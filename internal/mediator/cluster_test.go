package mediator_test

import (
	"crypto/sha256"
	"errors"
	"testing"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/protocol"
	"barter/internal/testutil"
	"barter/internal/transport"
)

func TestShardForDeterministicAndBalanced(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for obj := 1; obj <= 4000; obj++ {
		p1, r1 := mediator.ShardFor(catalog.ObjectID(obj), shards)
		p2, r2 := mediator.ShardFor(catalog.ObjectID(obj), shards)
		if p1 != p2 || r1 != r2 {
			t.Fatalf("ShardFor(%d) not deterministic: (%d,%d) vs (%d,%d)", obj, p1, r1, p2, r2)
		}
		if p1 < 0 || p1 >= shards || r1 < 0 || r1 >= shards {
			t.Fatalf("ShardFor(%d) out of range: (%d, %d)", obj, p1, r1)
		}
		if p1 == r1 {
			t.Fatalf("ShardFor(%d): replica equals primary in a %d-shard tier", obj, shards)
		}
		counts[p1]++
	}
	// Consistent hashing with 64 vnodes per shard keeps the load roughly
	// even; a collapsed ring (everything on one shard) means the hash or
	// the search is broken.
	for s, n := range counts {
		if n < 4000/shards/4 {
			t.Fatalf("shard %d owns only %d of 4000 objects: %v", s, n, counts)
		}
	}
	if p, r := mediator.ShardFor(7, 1); p != 0 || r != 0 {
		t.Fatalf("single-shard tier: ShardFor = (%d, %d)", p, r)
	}
}

// clusterFixture starts an n-shard cluster whose oracle knows objects
// 1..64 (one block each, content derived from the id).
func clusterFixture(t *testing.T, n int) (*transport.Mem, *mediator.Cluster, func(catalog.ObjectID) []byte) {
	t.Helper()
	tr := transport.NewMem()
	content := func(o catalog.ObjectID) []byte { return []byte{byte(o), 0xAB, byte(o >> 8)} }
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) {
		if o < 1 || o > 64 {
			return nil, false
		}
		return [][32]byte{sha256.Sum256(content(o))}, true
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "mem://med-" + string(rune('a'+i))
	}
	cl, err := mediator.NewCluster(tr, addrs, oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return tr, cl, content
}

func TestClusterServesShardMap(t *testing.T) {
	tr, cl, _ := clusterFixture(t, 3)
	// Bootstrapped with only one seed, the client discovers all three.
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: []string{cl.Addrs()[1]}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	epoch, addrs, err := c.Map()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 {
		t.Fatalf("shard map has %d entries, want 3: %v", len(addrs), addrs)
	}
	if epoch != cl.Epoch() {
		t.Fatalf("client epoch %d, cluster epoch %d", epoch, cl.Epoch())
	}
}

// TestClusterRedirectsMisroutedTraffic sends a deposit for every object to
// a shard chosen to be wrong and checks the mediator answers with the
// owning shard's coordinates instead of storing it.
func TestClusterRedirectsMisroutedTraffic(t *testing.T) {
	tr, cl, _ := clusterFixture(t, 4)
	redirected := 0
	for obj := catalog.ObjectID(1); obj <= 16; obj++ {
		primary, replica := mediator.ShardFor(obj, 4)
		wrong := -1
		for s := 0; s < 4; s++ {
			if s != primary && s != replica {
				wrong = s
				break
			}
		}
		conn, err := tr.Dial(cl.Addrs()[wrong])
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(&protocol.MedDeposit{ExchangeID: uint64(obj), Sender: 1, Object: obj, Key: [16]byte{1}}); err != nil {
			t.Fatal(err)
		}
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
		r, ok := msg.(*protocol.MedRedirect)
		if !ok {
			t.Fatalf("object %d: misrouted deposit answered with %T", obj, msg)
		}
		if int(r.Shard) != primary || r.Addr != cl.Addrs()[primary] {
			t.Fatalf("object %d: redirect to shard %d (%s), want %d (%s)", obj, r.Shard, r.Addr, primary, cl.Addrs()[primary])
		}
		redirected++
	}
	if redirected == 0 {
		t.Fatal("no redirects exercised")
	}
}

// TestClusterEndToEnd runs deposits and audits for many objects through a
// medclient against a 4-shard tier: every operation must land, honest
// verifies release keys, junk is flagged on whichever shard owns it.
func TestClusterEndToEnd(t *testing.T) {
	tr, cl, content := clusterFixture(t, 4)
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for obj := catalog.ObjectID(1); obj <= 32; obj++ {
		const sender, receiver core.PeerID = 10, 20
		var key [16]byte
		key[0] = byte(obj)
		ex := uint64(obj)
		if err := c.Deposit(ex, sender, obj, key); err != nil {
			t.Fatalf("deposit %d: %v", obj, err)
		}
		sealed, err := mediator.Seal(key, sender, receiver, obj, 0, content(obj))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(ex, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Origin: sender, Recipient: receiver, Encrypted: true, Payload: sealed}})
		if err != nil {
			t.Fatalf("verify %d: %v", obj, err)
		}
		if got != key {
			t.Fatalf("verify %d released the wrong key", obj)
		}
	}

	// A junk sender is flagged on the shard owning its object, and the
	// cluster-wide count sees it.
	const cheater core.PeerID = 66
	obj := catalog.ObjectID(5)
	var key [16]byte
	copy(key[:], "cheater-key-....")
	if err := c.Deposit(999, cheater, obj, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := mediator.Seal(key, cheater, 20, obj, 0, []byte("junk"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(999, 20, cheater, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}}); !errors.Is(err, medclient.ErrRejected) {
		t.Fatalf("junk passed the cluster audit: %v", err)
	}
	if cl.Flagged(cheater) == 0 {
		t.Fatal("cluster-wide flag count missed the cheater")
	}
}

// TestClusterFailoverMidVerify kills the primary shard between deposit and
// verify: the deposit was written through to the replica, so the client's
// failover must still obtain the key without ever reaching the corpse.
func TestClusterFailoverMidVerify(t *testing.T) {
	tr, cl, content := clusterFixture(t, 4)
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj := catalog.ObjectID(9)
	primary, _ := mediator.ShardFor(obj, 4)
	const sender, receiver core.PeerID = 1, 2
	var key [16]byte
	copy(key[:], "failover-key-...")
	if err := c.Deposit(123, sender, obj, key); err != nil {
		t.Fatal(err)
	}

	cl.KillShard(primary)

	sealed, err := mediator.Seal(key, sender, receiver, obj, 0, content(obj))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Verify(123, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
	if err != nil {
		t.Fatalf("verify after primary death: %v", err)
	}
	if got != key {
		t.Fatal("failover released the wrong key")
	}

	// Restart bumps the epoch and the revived shard serves again.
	before := cl.Epoch()
	if err := cl.RestartShard(primary); err != nil {
		t.Fatal(err)
	}
	if cl.Epoch() <= before {
		t.Fatalf("epoch did not advance across restart: %d -> %d", before, cl.Epoch())
	}
	if err := c.Deposit(124, sender, obj, key); err != nil {
		t.Fatalf("deposit after restart: %v", err)
	}
}

// TestClusterPrimaryRestartUsesReplicaEscrow: when the primary restarts
// (reachable again but with empty escrow), its no-key answer must not be
// the last word — the client consults the replica, whose write-through
// deposit copy survived, and the verify succeeds.
func TestClusterPrimaryRestartUsesReplicaEscrow(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	tr, cl, content := clusterFixture(t, 4)
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj := catalog.ObjectID(9)
	primary, _ := mediator.ShardFor(obj, 4)
	const sender, receiver core.PeerID = 1, 2
	var key [16]byte
	copy(key[:], "restart-key-....")
	if err := c.Deposit(456, sender, obj, key); err != nil {
		t.Fatal(err)
	}
	// Restart (not kill): the primary answers again, remembering nothing.
	if err := cl.RestartShard(primary); err != nil {
		t.Fatal(err)
	}
	sealed, err := mediator.Seal(key, sender, receiver, obj, 0, content(obj))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Verify(456, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
	if err != nil {
		t.Fatalf("verify after primary restart: %v", err)
	}
	if got != key {
		t.Fatal("replica escrow released the wrong key")
	}
}

// TestClusterRestartLosesEscrowWithoutFlagging: a verify whose escrow died
// with a restarted shard gets the transient no-key refusal, not a cheating
// verdict.
func TestClusterRestartLosesEscrowWithoutFlagging(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	tr, cl, content := clusterFixture(t, 2)
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj := catalog.ObjectID(3)
	const sender, receiver core.PeerID = 4, 5
	var key [16]byte
	copy(key[:], "lost-escrow-key.")
	if err := c.Deposit(321, sender, obj, key); err != nil {
		t.Fatal(err)
	}
	// Restart both shards: primary and replica copies are both gone.
	for i := 0; i < cl.Shards(); i++ {
		if err := cl.RestartShard(i); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := mediator.Seal(key, sender, receiver, obj, 0, content(obj))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Verify(321, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
	if !errors.Is(err, medclient.ErrNoKey) {
		t.Fatalf("lost escrow reported as %v, want ErrNoKey", err)
	}
	if cl.Flagged(sender) != 0 {
		t.Fatal("lost escrow flagged an honest sender")
	}
	// Re-deposit and verify: the tier recovered.
	if err := c.Deposit(321, sender, obj, key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(321, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}}); err != nil {
		t.Fatalf("verify after re-deposit: %v", err)
	}
}

func TestClusterValidation(t *testing.T) {
	tr := transport.NewMem()
	oracle := func(catalog.ObjectID) ([][32]byte, bool) { return nil, false }
	if _, err := mediator.NewCluster(tr, nil, oracle); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := mediator.NewCluster(tr, []string{"mem://x"}, nil); err == nil {
		t.Fatal("cluster without oracle accepted")
	}
}
