// Package mediator implements the trusted-mediator defense of Section III-B
// against middleman cheating: both directions of an exchange are encrypted,
// each with a secret key known only to the sending peer and the mediator;
// every block carries an encrypted control header naming its origin and
// intended recipient; and when the transfer completes the mediator audits a
// random sample of blocks before releasing the keys — to the peers named in
// the control headers, so a middleman who peddled someone else's blocks
// gains nothing.
//
// # Durability
//
// By default a shard's escrow and flagged-peer state live in memory and die
// with it: a restarted shard refuses unknown keys with a transient no-key
// code (never flagging anyone) and sessions re-escrow. With
// ShardOpts.DataDir set, the shard instead appends every accepted deposit
// and every flag to a per-shard write-ahead log (shard-<index>.wal, CRC-32
// framed, torn tails truncated on open) and replays it in NewShard, so a
// restart — of one shard or the whole tier — recovers both in-flight
// escrow and the full detection history. Writes are buffered through the
// OS without fsync: the log targets process restarts, not power loss.
// Flags additionally replicate to the object's replica shard the way
// deposits already write through, so losing the auditing shard does not
// lose the only copy of who cheated.
//
// # Elasticity
//
// Cluster.AddShard and Cluster.RemoveShard grow and shrink the ring live.
// Consistent hashing keeps survivor arcs stable (vnodes of the remaining
// shards never move), so a reshape migrates only the arcs adjacent to the
// joining or leaving member, carried by MedHandoff/MedHandoffAck messages
// between shards. Each reshape bumps the shard-map epoch; medclient's
// existing epoch invalidation makes every client refetch the map mid-run.
package mediator

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/protocol"
	"barter/internal/transport"
)

// ErrRejected is returned by client Verify calls when the audit fails.
var ErrRejected = errors.New("mediator: audit rejected the exchange")

// headerLen is the encrypted control header prefix of each sealed payload:
// origin (4) + recipient (4) + object (4) + index (4).
const headerLen = 16

// Audit request limits, enforced at the serve read path. The wire codec
// already bounds decoded frames, but the in-memory transport hands message
// pointers straight through — no codec runs — so the mediator itself must
// cap what one MedVerify may ask it to chew on, mirroring the PR 4
// count-amplification fix one layer up.
const (
	// MaxVerifySamples bounds the sample blocks one audit may submit.
	MaxVerifySamples = 64
	// MaxVerifyBytes bounds the total sealed payload across those samples.
	MaxVerifyBytes = 1 << 20
)

// Seal encrypts one block payload with its control header using AES-CTR
// under key. The nonce is derived from (object, index) so blocks are
// independently decryptable.
func Seal(key [16]byte, origin, recipient core.PeerID, obj catalog.ObjectID, index uint32, payload []byte) ([]byte, error) {
	buf := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(origin))
	binary.BigEndian.PutUint32(buf[4:8], uint32(recipient))
	binary.BigEndian.PutUint32(buf[8:12], uint32(obj))
	binary.BigEndian.PutUint32(buf[12:16], index)
	copy(buf[headerLen:], payload)
	return crypt(key, obj, index, buf)
}

// Open decrypts a sealed block, returning the control header fields and the
// plaintext payload.
func Open(key [16]byte, obj catalog.ObjectID, index uint32, sealed []byte) (origin, recipient core.PeerID, payload []byte, err error) {
	if len(sealed) < headerLen {
		return 0, 0, nil, errors.New("mediator: sealed block too short")
	}
	plain, err := crypt(key, obj, index, sealed)
	if err != nil {
		return 0, 0, nil, err
	}
	origin = core.PeerID(binary.BigEndian.Uint32(plain[0:4]))
	recipient = core.PeerID(binary.BigEndian.Uint32(plain[4:8]))
	gotObj := catalog.ObjectID(binary.BigEndian.Uint32(plain[8:12]))
	gotIdx := binary.BigEndian.Uint32(plain[12:16])
	if gotObj != obj || gotIdx != index {
		return 0, 0, nil, errors.New("mediator: control header does not match block position")
	}
	return origin, recipient, plain[headerLen:], nil
}

// crypt applies AES-CTR with a per-(object, index) nonce; it is its own
// inverse.
func crypt(key [16]byte, obj catalog.ObjectID, index uint32, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	var iv [16]byte
	binary.BigEndian.PutUint32(iv[0:4], uint32(obj))
	binary.BigEndian.PutUint32(iv[4:8], index)
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, data)
	return out, nil
}

// DigestOracle supplies the mediator's trustworthy source of valid block
// checksums (Section III-B assumes one exists; a content registry plays the
// role here).
type DigestOracle func(catalog.ObjectID) ([][32]byte, bool)

// ShardOpts position a mediator as one member of a sharded tier.
type ShardOpts struct {
	// Index and Count place this mediator on the consistent-hash ring;
	// Count <= 1 means a standalone mediator that owns every object. Count
	// is only the boot-time size: when Map is set, the tier size is read
	// from it on every ownership decision, so an elastic cluster can grow
	// or shrink under a running shard.
	Index, Count int
	// Map supplies the current cluster topology — epoch plus the dialable
	// address of every shard by index — for MedShardMapReq replies and
	// redirects. Required when Count > 1.
	Map func() (epoch uint64, addrs []string)
	// DataDir, when non-empty, enables the write-ahead log: deposits and
	// flags are appended to <DataDir>/shard-<Index>.wal and replayed on
	// the next NewShard at the same index, so a restart forgets nothing.
	DataDir string
}

// Mediator is the trusted audit-and-escrow service: one standalone process,
// or one shard of a Cluster. It listens on a transport and serves
// MedDeposit, MedVerify, and MedShardMapReq messages, redirecting traffic
// for objects outside its partition.
type Mediator struct {
	oracle DigestOracle
	shard  ShardOpts
	tr     transport.Transport
	ln     transport.Listener

	mu       sync.Mutex
	deposits map[depositKey]escrow
	flagged  map[core.PeerID]int // peers caught cheating, with counts
	wal      *wal                // nil without a DataDir

	// connMu guards the open-connection set so Close can tear down every
	// serve goroutine: a blocked Recv on an idle client would otherwise keep
	// wg.Wait from ever returning.
	connMu  sync.Mutex
	conns   map[transport.Conn]struct{}
	closing bool

	wg   sync.WaitGroup
	stop chan struct{}
}

type depositKey struct {
	exchange uint64
	sender   core.PeerID
}

// escrow is one deposited key plus the object it unlocks — the object is
// what routes the entry during arc migration and flag replication.
type escrow struct {
	key    [16]byte
	object catalog.ObjectID
}

// New starts a standalone mediator listening on addr.
func New(tr transport.Transport, addr string, oracle DigestOracle) (*Mediator, error) {
	return NewShard(tr, addr, oracle, ShardOpts{})
}

// NewShard starts a mediator as one member of a sharded tier.
func NewShard(tr transport.Transport, addr string, oracle DigestOracle, shard ShardOpts) (*Mediator, error) {
	if oracle == nil {
		return nil, errors.New("mediator: digest oracle is required")
	}
	if shard.Count > 1 {
		if shard.Index < 0 || shard.Index >= shard.Count {
			return nil, fmt.Errorf("mediator: shard index %d out of range [0, %d)", shard.Index, shard.Count)
		}
		if shard.Map == nil {
			return nil, errors.New("mediator: sharded tiers need a topology Map")
		}
	}
	m := &Mediator{
		oracle:   oracle,
		shard:    shard,
		tr:       tr,
		deposits: make(map[depositKey]escrow),
		flagged:  make(map[core.PeerID]int),
		conns:    make(map[transport.Conn]struct{}),
		stop:     make(chan struct{}),
	}
	if shard.DataDir != "" {
		if err := os.MkdirAll(shard.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("mediator: data dir: %w", err)
		}
		w, err := openWAL(walPath(shard.DataDir, shard.Index),
			func(d walDeposit) {
				m.deposits[depositKey{exchange: d.exchange, sender: d.sender}] = escrow{key: d.key, object: d.object}
			},
			func(p core.PeerID, n uint32) { m.flagged[p] += int(n) },
		)
		if err != nil {
			return nil, fmt.Errorf("mediator: write-ahead log: %w", err)
		}
		m.wal = w
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		m.wal.Close()
		return nil, err
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// tierCount is the current tier size: read from the topology Map when one
// is wired (elastic clusters resize under running shards), the boot-time
// Count otherwise.
func (m *Mediator) tierCount() int {
	n := m.shard.Count
	if m.shard.Map != nil {
		if _, addrs := m.shard.Map(); len(addrs) > 0 {
			n = len(addrs)
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// owns reports whether this shard's partition covers obj, either as its
// primary or as the replica clients fail over to. A shard whose index has
// fallen off the tier (removed by an elastic shrink) owns nothing and
// redirects everything.
func (m *Mediator) owns(obj catalog.ObjectID) bool {
	count := m.tierCount()
	if m.shard.Index >= count {
		return false
	}
	if count <= 1 {
		return true
	}
	primary, replica := ShardFor(obj, count)
	return primary == m.shard.Index || replica == m.shard.Index
}

// shardMap returns the topology this mediator advertises: its cluster's
// map, or itself as a tier of one.
func (m *Mediator) shardMap() (uint64, []string) {
	if m.shard.Map == nil {
		return 1, []string{m.Addr()}
	}
	return m.shard.Map()
}

// redirect answers a misrouted request with the owning shard's coordinates.
func (m *Mediator) redirect(send func(protocol.Message) error, obj catalog.ObjectID) {
	primary, _ := ShardFor(obj, m.tierCount())
	epoch, addrs := m.shardMap()
	addr := ""
	if primary < len(addrs) {
		addr = addrs[primary]
	}
	_ = send(&protocol.MedRedirect{Object: obj, Shard: uint32(primary), Addr: addr, Epoch: epoch})
}

// Addr returns the mediator's dialable address.
func (m *Mediator) Addr() string { return m.ln.Addr() }

// Close stops the mediator: it stops accepting, closes every open client
// connection (unblocking their serve goroutines), and waits for them.
func (m *Mediator) Close() {
	select {
	case <-m.stop:
		return
	default:
	}
	close(m.stop)
	_ = m.ln.Close()
	m.connMu.Lock()
	m.closing = true
	open := make([]transport.Conn, 0, len(m.conns))
	for c := range m.conns {
		open = append(open, c)
	}
	m.connMu.Unlock()
	for _, c := range open {
		_ = c.Close()
	}
	m.wg.Wait()
	m.wal.Close()
}

// track registers an open connection; it refuses once Close has begun so a
// connection accepted during teardown cannot outlive wg.Wait.
func (m *Mediator) track(c transport.Conn) bool {
	m.connMu.Lock()
	defer m.connMu.Unlock()
	if m.closing {
		return false
	}
	m.conns[c] = struct{}{}
	return true
}

func (m *Mediator) untrack(c transport.Conn) {
	m.connMu.Lock()
	delete(m.conns, c)
	m.connMu.Unlock()
}

// WALErr reports the first write-ahead-log append failure, or nil while the
// shard is fully durable (or runs without a DataDir). A failing log
// degrades the shard to in-memory durability — it keeps serving, but a
// restart will forget whatever the log missed — so operators and soak
// scenarios can distinguish "durable" from "running on memory".
func (m *Mediator) WALErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wal.Err()
}

// Flagged returns how many times a peer failed an audit.
func (m *Mediator) Flagged(p core.PeerID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flagged[p]
}

// FlaggedAll snapshots every flagged peer and its count.
func (m *Mediator) FlaggedAll() map[core.PeerID]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[core.PeerID]int, len(m.flagged))
	for p, n := range m.flagged {
		out[p] = n
	}
	return out
}

func (m *Mediator) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		if !m.track(conn) {
			_ = conn.Close()
			return
		}
		m.wg.Add(1)
		go m.serve(conn)
	}
}

func (m *Mediator) serve(conn transport.Conn) {
	defer m.wg.Done()
	defer m.untrack(conn)
	defer conn.Close() //barter:allow unchecked-io teardown: the peer sees the drop; nothing durable rides on this close
	// reqs tracks the per-request goroutines spawned for enveloped
	// (pipelined) RPCs; serve waits for them before returning so Close's
	// wg.Wait still covers every in-flight audit.
	var reqs sync.WaitGroup
	defer reqs.Wait()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if env, ok := msg.(*protocol.Envelope); ok {
			// Pipelined RPC: serve it concurrently and echo the request id
			// on every reply so the client's read loop can demultiplex.
			// Conn.Send is safe for concurrent use by contract.
			reqID, inner := env.ReqID, env.Msg
			send := func(reply protocol.Message) error {
				return conn.Send(&protocol.Envelope{ReqID: reqID, Msg: reply})
			}
			reqs.Add(1)
			go func() {
				defer reqs.Done()
				if m.handleRPC(send, inner) {
					// A limit-violating request forfeits the connection even
					// under pipelining; closing unblocks the Recv loop, which
					// then waits out the sibling requests.
					_ = conn.Close()
				}
			}()
			continue
		}
		// Legacy unenveloped traffic keeps the strict sequential,
		// unenveloped-reply handling so old clients interoperate unchanged.
		if m.handleRPC(conn.Send, msg) {
			return
		}
	}
}

// handleRPC serves one mediator request, routing any replies through send
// (which wraps them in the request's envelope when the request was
// enveloped). It returns true when the connection should be dropped — a
// client that violates the audit limits forfeits the connection, pipelined
// or not.
func (m *Mediator) handleRPC(send func(protocol.Message) error, msg protocol.Message) bool {
	switch req := msg.(type) {
	case *protocol.Hello:
		// Accepted for compatibility with node connections; no reply.
	case *protocol.MedShardMapReq:
		epoch, addrs := m.shardMap()
		reply := &protocol.MedShardMap{Version: protocol.ShardMapVersion, Epoch: epoch}
		for i, a := range addrs {
			reply.Shards = append(reply.Shards, protocol.MedShardEntry{Index: uint32(i), Addr: a})
		}
		_ = send(reply)
	case *protocol.MedDeposit:
		if !m.owns(req.Object) {
			m.redirect(send, req.Object)
			return false
		}
		m.mu.Lock()
		m.deposits[depositKey{exchange: req.ExchangeID, sender: req.Sender}] = escrow{key: req.Key, object: req.Object}
		if m.wal != nil {
			m.wal.appendDeposit(walDeposit{exchange: req.ExchangeID, sender: req.Sender, object: req.Object, key: req.Key})
		}
		m.mu.Unlock()
		// Echo as the deposit acknowledgement so clients can treat
		// escrow as synchronous.
		_ = send(&protocol.MedKey{ExchangeID: req.ExchangeID, Key: req.Key})
	case *protocol.MedHandoff:
		m.handleHandoff(send, req)
	case *protocol.MedVerify:
		if !m.owns(req.Object) {
			m.redirect(send, req.Object)
			return false
		}
		if oversizedVerify(req) {
			// A well-behaved client never exceeds the audit limits;
			// reject without a verdict and drop the connection.
			_ = send(&protocol.MedReject{
				ExchangeID: req.ExchangeID,
				Code:       protocol.MedRejectOversize,
				Reason:     "audit request exceeds mediator limits",
			})
			return true
		}
		m.handleVerify(send, req)
	default:
		// Ignore unrelated traffic.
	}
	return false
}

// handleVerify audits the sample blocks the requester received from Sender:
// every sample must decrypt under the sender's escrowed key to a block whose
// control header names the sender as origin and the requester as recipient,
// and whose payload digest matches the oracle. Only then is the key
// released — and it is sent to the connection that proved receipt, which by
// the header check is the intended recipient.
func (m *Mediator) handleVerify(send func(protocol.Message) error, req *protocol.MedVerify) {
	// reject is the audit verdict: the samples, decrypted under the key
	// the claimed sender itself escrowed, contradict the claim — the
	// paper's evidence standard for flagging (deposits and audits are
	// assumed to travel over the peers' secure channels to the mediator).
	reject := func(reason string) {
		m.mu.Lock()
		m.flagged[req.Sender]++
		if m.wal != nil {
			m.wal.appendFlag(req.Sender, 1)
		}
		m.mu.Unlock()
		// Replicate the verdict to the object's other owner the way
		// deposits write through, so losing this shard loses no history.
		m.replicateFlag(req.Object, req.Sender)
		_ = send(&protocol.MedReject{ExchangeID: req.ExchangeID, Code: protocol.MedRejectAudit, Reason: reason})
	}
	// refuse is for faults attributable to the requester or to this
	// shard's own configuration: no verdict is reached and nobody is
	// flagged — a malformed audit must never brand an honest sender.
	refuse := func(code uint8, reason string) {
		_ = send(&protocol.MedReject{ExchangeID: req.ExchangeID, Code: code, Reason: reason})
	}
	m.mu.Lock()
	dep, ok := m.deposits[depositKey{exchange: req.ExchangeID, sender: req.Sender}]
	m.mu.Unlock()
	key := dep.key
	if !ok {
		// Not proof of cheating: the deposit may simply not have arrived
		// yet, or this shard restarted and lost its escrow. Refuse without
		// flagging so a transient gap never brands an honest sender.
		refuse(protocol.MedRejectNoKey, "no escrowed key for claimed sender")
		return
	}
	digests, ok := m.oracle(req.Object)
	if !ok {
		refuse(protocol.MedRejectBadRequest, "object unknown to digest oracle")
		return
	}
	if len(req.Samples) == 0 {
		refuse(protocol.MedRejectBadRequest, "no samples supplied")
		return
	}
	for _, sample := range req.Samples {
		if sample.Object != req.Object {
			refuse(protocol.MedRejectBadRequest, "sample from a different object")
			return
		}
		origin, recipient, payload, err := Open(key, sample.Object, sample.Index, sample.Payload)
		if err != nil {
			reject(fmt.Sprintf("sample %d: %v", sample.Index, err))
			return
		}
		if origin != req.Sender {
			// The claimed sender did not author these blocks: the classic
			// middleman peddling someone else's transfer.
			reject(fmt.Sprintf("sample %d authored by %d, not %d", sample.Index, origin, req.Sender))
			return
		}
		if recipient != req.Requester {
			reject(fmt.Sprintf("sample %d addressed to %d, not %d", sample.Index, recipient, req.Requester))
			return
		}
		if int(sample.Index) >= len(digests) || sha256.Sum256(payload) != digests[sample.Index] {
			reject(fmt.Sprintf("sample %d fails content audit", sample.Index))
			return
		}
	}
	_ = send(&protocol.MedKey{ExchangeID: req.ExchangeID, Key: key})
}

// handleHandoff merges state pushed by a sibling shard — arc migration
// during an elastic reshape, or a single flag written through by the
// object's other owner. Deposits insert only if absent (the receiver may
// already hold a write-through copy); flag counts add. Merged state goes to
// the WAL like native state, and never re-replicates — that would bounce
// between the two owners forever.
func (m *Mediator) handleHandoff(send func(protocol.Message) error, req *protocol.MedHandoff) {
	var nd, nf uint32
	m.mu.Lock()
	for _, d := range req.Deposits {
		k := depositKey{exchange: d.ExchangeID, sender: d.Sender}
		if _, ok := m.deposits[k]; ok {
			continue
		}
		m.deposits[k] = escrow{key: d.Key, object: d.Object}
		if m.wal != nil {
			m.wal.appendDeposit(walDeposit{exchange: d.ExchangeID, sender: d.Sender, object: d.Object, key: d.Key})
		}
		nd++
	}
	for _, f := range req.Flags {
		if f.Count == 0 {
			continue
		}
		m.flagged[f.Peer] += int(f.Count)
		if m.wal != nil {
			m.wal.appendFlag(f.Peer, f.Count)
		}
		nf++
	}
	m.mu.Unlock()
	_ = send(&protocol.MedHandoffAck{Deposits: nd, Flags: nf})
}

// replicateFlag pushes one flag verdict to obj's other owner (the replica if
// this shard is the primary, the primary if this shard is the replica), so a
// single shard loss cannot erase detection history. Best-effort and
// asynchronous: the audit reply never waits on a sibling, and double counts
// are harmless — consumers only ask whether a peer was flagged at all.
func (m *Mediator) replicateFlag(obj catalog.ObjectID, peer core.PeerID) {
	if m.shard.Map == nil {
		return
	}
	count := m.tierCount()
	if count <= 1 {
		return
	}
	primary, replica := ShardFor(obj, count)
	if primary == replica {
		return
	}
	var target int
	switch m.shard.Index {
	case primary:
		target = replica
	case replica:
		target = primary
	default:
		return
	}
	epoch, addrs := m.shard.Map()
	if target >= len(addrs) || addrs[target] == "" {
		return
	}
	addr := addrs[target]
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		conn, err := m.tr.Dial(addr)
		if err != nil {
			return
		}
		// Track the outbound conn like an inbound one so Close can unblock
		// the ack read during teardown.
		if !m.track(conn) {
			_ = conn.Close()
			return
		}
		defer m.untrack(conn)
		defer conn.Close() //barter:allow unchecked-io teardown: the peer sees the drop; nothing durable rides on this close
		if err := conn.Send(&protocol.MedHandoff{
			From:  uint32(m.shard.Index),
			Epoch: epoch,
			Flags: []protocol.MedFlagRecord{{Peer: peer, Count: 1}},
		}); err != nil {
			return
		}
		_, _ = conn.Recv() // best-effort ack
	}()
}

// exportState snapshots every deposit and flag this shard holds, in the wire
// form arc migration hands between shards.
func (m *Mediator) exportState() ([]protocol.MedDepositRecord, []protocol.MedFlagRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deposits := make([]protocol.MedDepositRecord, 0, len(m.deposits))
	for k, e := range m.deposits {
		deposits = append(deposits, protocol.MedDepositRecord{
			ExchangeID: k.exchange, Sender: k.sender, Object: e.object, Key: e.key,
		})
	}
	flags := make([]protocol.MedFlagRecord, 0, len(m.flagged))
	for p, n := range m.flagged {
		if n > 0 {
			flags = append(flags, protocol.MedFlagRecord{Peer: p, Count: uint32(n)})
		}
	}
	return deposits, flags
}

// oversizedVerify applies the audit limits at the read path, before any
// per-sample work.
func oversizedVerify(req *protocol.MedVerify) bool {
	if len(req.Samples) > MaxVerifySamples {
		return true
	}
	total := 0
	for i := range req.Samples {
		total += len(req.Samples[i].Payload)
		if total > MaxVerifyBytes {
			return true
		}
	}
	return false
}
