package transport

import (
	"fmt"
	"sync"

	"barter/internal/protocol"
)

// Mem is an in-process transport: listeners are registered in a shared
// registry by name, and connections are paired message channels. It gives
// tests and examples real concurrency with zero syscalls.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
}

var _ Transport = (*Mem)(nil)

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen implements Transport.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.nextAuto++
		addr = fmt.Sprintf("mem://auto-%d", m.nextAuto)
	}
	if _, taken := m.listeners[addr]; taken {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{
		net:     m,
		addr:    addr,
		backlog: make(chan *memConn, 16),
		done:    make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := pipe(addr, "mem://dialer")
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (m *Mem) drop(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	net     *Mem
	addr    string
	backlog chan *memConn
	done    chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.drop(l.addr)
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memConn is one endpoint of a paired in-memory connection.
type memConn struct {
	remote string
	out    chan<- protocol.Message
	in     <-chan protocol.Message
	// closed is shared between both endpoints: closing either side tears
	// down the pair, like a TCP reset.
	closed chan struct{}
	once   *sync.Once
}

// pipe builds a connected pair; a's sends arrive at b's Recv and vice versa.
func pipe(aRemote, bRemote string) (a, b *memConn) {
	ab := make(chan protocol.Message, 64)
	ba := make(chan protocol.Message, 64)
	closed := make(chan struct{})
	once := &sync.Once{}
	a = &memConn{remote: aRemote, out: ab, in: ba, closed: closed, once: once}
	b = &memConn{remote: bRemote, out: ba, in: ab, closed: closed, once: once}
	return a, b
}

func (c *memConn) Send(msg protocol.Message) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	select {
	case c.out <- msg:
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

func (c *memConn) Recv() (protocol.Message, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.closed:
		// Drain anything already queued before reporting closure, so an
		// orderly shutdown does not drop in-flight messages.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *memConn) RemoteAddr() string { return c.remote }
