package transport

import (
	"fmt"
	"sync"
	"time"

	"barter/internal/protocol"
)

// Mem is an in-process transport: listeners are registered in a shared
// registry by name, and connections are paired message channels. It gives
// tests and examples real concurrency with zero syscalls.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
	latency   time.Duration
}

var _ Transport = (*Mem)(nil)

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// NewMemLatency returns an in-memory network that delays every message by
// the given one-way latency. Delivery is timestamped at send, so messages
// in flight overlap: two frames sent back-to-back arrive one latency after
// their sends, not two. That makes round-trip-bound behavior (RPC
// pipelining, stall timers) measurable without a real network.
func NewMemLatency(oneWay time.Duration) *Mem {
	m := NewMem()
	m.latency = oneWay
	return m
}

// Listen implements Transport.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.nextAuto++
		addr = fmt.Sprintf("mem://auto-%d", m.nextAuto)
	}
	if _, taken := m.listeners[addr]; taken {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{
		net:     m,
		addr:    addr,
		backlog: make(chan *memConn, 16),
		done:    make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := pipe(addr, "mem://dialer", m.latency)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (m *Mem) drop(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	net     *Mem
	addr    string
	backlog chan *memConn
	done    chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.drop(l.addr)
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memMsg is one in-flight message; due is when the simulated network
// delivers it (zero when the network adds no latency).
type memMsg struct {
	msg protocol.Message
	due time.Time
}

// memConn is one endpoint of a paired in-memory connection.
type memConn struct {
	remote  string
	out     chan<- memMsg
	in      <-chan memMsg
	latency time.Duration
	// closed is shared between both endpoints: closing either side tears
	// down the pair, like a TCP reset.
	closed chan struct{}
	once   *sync.Once
}

// pipe builds a connected pair; a's sends arrive at b's Recv and vice versa.
func pipe(aRemote, bRemote string, latency time.Duration) (a, b *memConn) {
	ab := make(chan memMsg, 64)
	ba := make(chan memMsg, 64)
	closed := make(chan struct{})
	once := &sync.Once{}
	a = &memConn{remote: aRemote, out: ab, in: ba, latency: latency, closed: closed, once: once}
	b = &memConn{remote: bRemote, out: ba, in: ab, latency: latency, closed: closed, once: once}
	return a, b
}

func (c *memConn) Send(msg protocol.Message) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	m := memMsg{msg: msg}
	if c.latency > 0 {
		m.due = time.Now().Add(c.latency)
	}
	select {
	case c.out <- m:
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

// deliver holds a received message until its delivery time. Messages queued
// behind it carry their own send-stamped deadlines, so a burst pays the
// latency once, not per frame.
func (c *memConn) deliver(m memMsg) protocol.Message {
	if !m.due.IsZero() {
		if d := time.Until(m.due); d > 0 {
			time.Sleep(d)
		}
	}
	return m.msg
}

func (c *memConn) Recv() (protocol.Message, error) {
	select {
	case m := <-c.in:
		return c.deliver(m), nil
	case <-c.closed:
		// Drain anything already queued before reporting closure, so an
		// orderly shutdown does not drop in-flight messages.
		select {
		case m := <-c.in:
			return c.deliver(m), nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *memConn) RemoteAddr() string { return c.remote }
