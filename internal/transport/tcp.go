package transport

import (
	"bufio"
	"net"
	"sync"

	"barter/internal/protocol"
)

// TCP is the production transport: protocol frames over TCP connections.
type TCP struct{}

var _ Transport = TCP{}

// Listen implements Transport; addr is host:port, ":0" auto-assigns.
func (TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{nl: nl}, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

type tcpConn struct {
	nc net.Conn
	br *bufio.Reader

	// sendMu serializes writers; bufio.Writer is flushed per message so a
	// frame is never interleaved or half-buffered across Sends.
	sendMu sync.Mutex
	bw     *bufio.Writer
}

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

func (c *tcpConn) Send(msg protocol.Message) error {
	frame, err := protocol.Encode(msg)
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (protocol.Message, error) {
	return protocol.Decode(c.br)
}

func (c *tcpConn) Close() error       { return c.nc.Close() }
func (c *tcpConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
