package transport

import (
	"bufio"
	"net"
	"sync"
	"time"

	"barter/internal/protocol"
)

// TCP is the production transport: protocol frames over TCP connections.
//
// The zero value applies no I/O deadlines, matching historical behavior.
// Setting ReadTimeout or WriteTimeout arms a deadline around every Recv or
// Send on connections this transport creates (both dialed and accepted), so
// a hung peer surfaces as an error instead of wedging a reader goroutine —
// and with it an upload slot — forever.
type TCP struct {
	// ReadTimeout bounds each Recv; zero means no read deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each Send; zero means no write deadline.
	WriteTimeout time.Duration
}

var _ Transport = TCP{}

// Listen implements Transport; addr is host:port, ":0" auto-assigns.
func (t TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{nl: nl, readTimeout: t.ReadTimeout, writeTimeout: t.WriteTimeout}, nil
}

// Dial implements Transport.
func (t TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc, t.ReadTimeout, t.WriteTimeout), nil
}

type tcpListener struct {
	nl           net.Listener
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc, l.readTimeout, l.writeTimeout), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

type tcpConn struct {
	nc           net.Conn
	br           *bufio.Reader
	readTimeout  time.Duration
	writeTimeout time.Duration

	// sendMu serializes writers; bufio.Writer is flushed per message so a
	// frame is never interleaved or half-buffered across Sends. sendBuf is
	// the connection's encode scratch, guarded by the same lock: steady-state
	// sends (block transfers above all) re-encode into it without allocating.
	sendMu  sync.Mutex
	bw      *bufio.Writer
	sendBuf []byte

	// recvBuf is the decode-side scratch, the mirror of sendBuf: Recv is
	// single-reader by the Conn contract, so no lock guards it. Decoded
	// messages never alias it (protocol.DecodeBuf copies variable-length
	// fields out), making it safe to reuse on the very next Recv.
	recvBuf []byte
}

func newTCPConn(nc net.Conn, readTimeout, writeTimeout time.Duration) *tcpConn {
	return &tcpConn{
		nc:           nc,
		br:           bufio.NewReaderSize(nc, 64<<10),
		bw:           bufio.NewWriterSize(nc, 64<<10),
		readTimeout:  readTimeout,
		writeTimeout: writeTimeout,
	}
}

func (c *tcpConn) Send(msg protocol.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	frame, err := protocol.AppendEncode(c.sendBuf[:0], msg)
	if err != nil {
		return err
	}
	c.sendBuf = frame
	if c.writeTimeout > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *tcpConn) Recv() (protocol.Message, error) {
	if c.readTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return nil, err
		}
	}
	msg, scratch, err := protocol.DecodeBuf(c.br, c.recvBuf)
	c.recvBuf = scratch
	return msg, err
}

func (c *tcpConn) Close() error       { return c.nc.Close() }
func (c *tcpConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
