// Package transport abstracts the byte transport under the live peer
// protocol: an in-memory implementation for tests and examples, and a TCP
// implementation for real deployments. Both carry protocol.Message frames.
package transport

import (
	"errors"

	"barter/internal/protocol"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// Conn is a reliable, ordered, message-oriented duplex connection.
type Conn interface {
	// Send writes one message. It is safe for concurrent use.
	Send(msg protocol.Message) error
	// Recv blocks until a message arrives or the connection closes.
	Recv() (protocol.Message, error)
	// Close releases the connection; pending Recv calls fail.
	Close() error
	// RemoteAddr names the other endpoint (best effort).
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops accepting; pending Accepts fail.
	Close() error
	// Addr is the bound address peers should dial.
	Addr() string
}

// Transport creates listeners and outbound connections.
type Transport interface {
	// Listen binds addr and returns a listener. For the in-memory
	// transport, addr is any unique name; empty means auto-assign. For
	// TCP, addr is a host:port (":0" auto-assigns).
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}
