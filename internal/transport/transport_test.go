package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"barter/internal/protocol"
)

// exercise runs the shared transport contract against any implementation.
func exercise(t *testing.T, tr Transport, addr string) {
	t.Helper()

	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close() //nolint:errcheck // test cleanup

	type accepted struct {
		conn Conn
		err  error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		acceptCh <- accepted{conn: c, err: err}
	}()

	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close() //nolint:errcheck // test cleanup

	acc := <-acceptCh
	if acc.err != nil {
		t.Fatalf("Accept: %v", acc.err)
	}
	server := acc.conn
	defer server.Close() //nolint:errcheck // test cleanup

	// Bidirectional traffic.
	if err := client.Send(&protocol.Hello{Peer: 1, Sharing: true}); err != nil {
		t.Fatalf("client Send: %v", err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatalf("server Recv: %v", err)
	}
	hello, ok := msg.(*protocol.Hello)
	if !ok || hello.Peer != 1 || !hello.Sharing {
		t.Fatalf("server got %+v", msg)
	}
	if err := server.Send(&protocol.BlockAck{Object: 9, Index: 3, OK: true}); err != nil {
		t.Fatalf("server Send: %v", err)
	}
	back, err := client.Recv()
	if err != nil {
		t.Fatalf("client Recv: %v", err)
	}
	if ack, ok := back.(*protocol.BlockAck); !ok || ack.Object != 9 {
		t.Fatalf("client got %+v", back)
	}

	// Ordering under concurrency: many messages from one side arrive in
	// send order.
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := client.Send(&protocol.BlockAck{Index: uint32(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ack := m.(*protocol.BlockAck); ack.Index != uint32(i) {
			t.Fatalf("out of order: got %d want %d", ack.Index, i)
		}
	}
	wg.Wait()

	// Close tears down Recv.
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv after peer close returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not observe peer close")
	}
}

func TestMemTransportContract(t *testing.T) {
	exercise(t, NewMem(), "mem://contract")
}

func TestTCPTransportContract(t *testing.T) {
	exercise(t, TCP{}, "127.0.0.1:0")
}

func TestMemDialUnknownAddress(t *testing.T) {
	m := NewMem()
	if _, err := m.Dial("mem://nowhere"); err == nil {
		t.Fatal("Dial to unknown address succeeded")
	}
}

func TestMemDuplicateListen(t *testing.T) {
	m := NewMem()
	if _, err := m.Listen("mem://dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("mem://dup"); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestMemAutoAddress(t *testing.T) {
	m := NewMem()
	a, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == b.Addr() || a.Addr() == "" {
		t.Fatalf("auto addresses not unique: %q vs %q", a.Addr(), b.Addr())
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("mem://closing")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
	// Address is released for reuse.
	if _, err := m.Listen("mem://closing"); err != nil {
		t.Fatalf("re-Listen after Close: %v", err)
	}
}

func TestMemSendAfterCloseFails(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("mem://x")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err == nil {
			_ = c.Close()
		}
	}()
	c, err := m.Dial("mem://x")
	if err != nil {
		t.Fatal(err)
	}
	// Either endpoint closing kills the pair.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Send(&protocol.RingQuit{RingID: 1}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Send kept succeeding after peer close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMemDrainsQueuedMessagesOnClose(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("mem://drain")
	if err != nil {
		t.Fatal(err)
	}
	serverCh := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			serverCh <- c
		}
	}()
	client, err := m.Dial("mem://drain")
	if err != nil {
		t.Fatal(err)
	}
	server := <-serverCh
	if err := client.Send(&protocol.RingQuit{RingID: 42}); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	msg, err := server.Recv()
	if err != nil {
		t.Fatalf("queued message lost on close: %v", err)
	}
	if q, ok := msg.(*protocol.RingQuit); !ok || q.RingID != 42 {
		t.Fatalf("got %+v", msg)
	}
}

// TestTCPReadDeadline: with a ReadTimeout armed, a Recv from a peer that
// never speaks fails instead of blocking forever (the hung-peer wedge the
// swarm's churn scenario would otherwise hit over TCP).
func TestTCPReadDeadline(t *testing.T) {
	tr := TCP{ReadTimeout: 100 * time.Millisecond}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // test cleanup
	errCh := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()   //nolint:errcheck // test cleanup
		_, err = c.Recv() // the dialer never sends
		errCh <- err
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test cleanup
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv from a silent peer returned nil error")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("Recv err = %v, want a net timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv ignored the read deadline")
	}
}

// TestTCPReadDeadlineOnDialedConn mirrors TestTCPReadDeadline from the
// dialer's side: deadlines must be armed on outbound connections too, and
// the connection must close cleanly after the expiry.
func TestTCPReadDeadlineOnDialedConn(t *testing.T) {
	tr := TCP{ReadTimeout: 100 * time.Millisecond}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // test cleanup
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Recv() // the acceptor never sends
	if err == nil {
		t.Fatal("Recv from a silent listener returned nil error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("Recv err = %v, want a net timeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("read deadline fired far too late")
	}
	// The op failed; the connection still closes cleanly, exactly once.
	if err := c.Close(); err != nil {
		t.Fatalf("Close after read expiry: %v", err)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv succeeded on a closed connection")
	}
	select {
	case sc := <-accepted:
		sc.Close() //nolint:errcheck // test cleanup
	default:
	}
}

// TestTCPWriteDeadline: with a WriteTimeout armed, sending into a peer
// that never reads must fail once the socket buffers fill, instead of
// wedging the writer goroutine (and its upload slot) forever — and the
// connection must still close cleanly afterwards.
func TestTCPWriteDeadline(t *testing.T) {
	tr := TCP{WriteTimeout: 100 * time.Millisecond}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // test cleanup
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c // never Recv: the socket buffers must fill
		}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test cleanup

	msg := &protocol.Block{Object: 1, Payload: make([]byte, 1<<20)}
	var sendErr error
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; i < 256 && sendErr == nil; i++ {
		if time.Now().After(deadline) {
			t.Fatal("write deadline never fired despite an unread flood")
		}
		sendErr = c.Send(msg)
	}
	if sendErr == nil {
		t.Fatal("256 MiB queued against a non-reading peer without an error")
	}
	var ne net.Error
	if !errors.As(sendErr, &ne) || !ne.Timeout() {
		t.Fatalf("Send err = %v, want a net timeout", sendErr)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close after write expiry: %v", err)
	}
	if err := c.Send(msg); err == nil {
		t.Fatal("Send succeeded on a closed connection")
	}
	select {
	case sc := <-accepted:
		sc.Close() //nolint:errcheck // test cleanup
	case <-time.After(5 * time.Second):
		t.Fatal("listener never accepted")
	}
}

// TestTCPNoDeadlineByDefault: the zero-value transport must not time out a
// quiet but healthy connection (compatibility with existing deployments).
func TestTCPNoDeadlineByDefault(t *testing.T) {
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // test cleanup
	got := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			got <- err
			return
		}
		defer c.Close() //nolint:errcheck // test cleanup
		_, err = c.Recv()
		got <- err
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test cleanup
	// Stay silent past any plausible accidental deadline, then speak.
	time.Sleep(300 * time.Millisecond)
	if err := c.Send(&protocol.Hello{Peer: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("Recv on an idle default connection failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
}

// TestTCPDeadlineContract: a transport with generous deadlines still passes
// the full transport contract (deadlines are re-armed per operation, not
// absolute).
func TestTCPDeadlineContract(t *testing.T) {
	exercise(t, TCP{ReadTimeout: 30 * time.Second, WriteTimeout: 30 * time.Second}, "127.0.0.1:0")
}

func TestTCPLargeMessage(t *testing.T) {
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck // test cleanup
	got := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close() //nolint:errcheck // test cleanup
		if m, err := c.Recv(); err == nil {
			got <- m.(*protocol.Block).Payload
		}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test cleanup
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := c.Send(&protocol.Block{Object: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if len(p) != len(payload) || p[12345] != payload[12345] {
			t.Fatal("large payload corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large message never arrived")
	}
}
