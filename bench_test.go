package barter

import (
	"crypto/sha256"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"barter/internal/core"
	"barter/internal/experiment"
	"barter/internal/mediator"
	"barter/internal/metrics"
	"barter/internal/protocol"
	"barter/internal/runner"
	"barter/internal/sim"
	"barter/internal/workload"
)

// The benchmarks below regenerate every table and figure of the paper at the
// scaled-down (quick) configuration, reporting each figure's headline number
// as a custom metric so `go test -bench .` doubles as a reproduction run.
// cmd/exchsim regenerates the same artifacts at paper scale.

func benchOpts() experiment.Options { return experiment.Options{Seed: 1, Quick: true} }

func runExperiment(b *testing.B, id string) *experiment.Report {
	b.Helper()
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	rep, err := e.Run(benchOpts())
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	return rep
}

func lastY(b *testing.B, tab *metrics.Table, series string) float64 {
	b.Helper()
	s := tab.Get(series)
	if s == nil || len(s.Points) == 0 {
		b.Fatalf("series %q missing or empty", series)
	}
	return s.Points[len(s.Points)-1].Y
}

func BenchmarkTable2Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "table2")
		if rep.Text == "" {
			b.Fatal("empty table2")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig4")
		tab := rep.Tables[0]
		sharing := lastY(b, tab, "2-5-way/sharing")
		non := lastY(b, tab, "2-5-way/non-sharing")
		b.ReportMetric(non/sharing, "speedup@tightest")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig5")
		b.ReportMetric(lastY(b, rep.Tables[0], "2-5-way"), "exchfrac@tightest")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig6")
		tab := rep.Tables[0]
		sharing := lastY(b, tab, "2-N-way/sharing")
		non := lastY(b, tab, "2-N-way/non-sharing")
		b.ReportMetric(non/sharing, "speedup@maxN")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig7")
		b.ReportMetric(float64(len(rep.Tables[0].Series)), "session-classes")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig8")
		b.ReportMetric(float64(len(rep.Tables[0].Series)), "session-classes")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig9")
		tab := rep.Tables[0]
		sharing := lastY(b, tab, "2-5-way/sharing")
		non := lastY(b, tab, "2-5-way/non-sharing")
		b.ReportMetric(non/sharing, "speedup@f=1")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig10")
		tab := rep.Tables[0]
		b.ReportMetric(lastY(b, tab, "2-5-way/sharing"), "sharingMB@f=1")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig11")
		b.ReportMetric(lastY(b, rep.Tables[0], "cat/peer=8"), "speedup@cats8")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "fig12")
		tab := rep.Tables[0]
		sharing := lastY(b, tab, "2-5-way/sharing")
		non := lastY(b, tab, "2-5-way/non-sharing")
		b.ReportMetric(non/sharing, "speedup@frac0.8")
	}
}

func BenchmarkAblationPreemption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "ablation-preemption")
		tab := rep.Tables[0]
		with := lastY(b, tab, "with preemption")
		without := lastY(b, tab, "without preemption")
		if !math.IsNaN(with) && !math.IsNaN(without) {
			b.ReportMetric(with-without, "speedup-delta")
		}
	}
}

func BenchmarkAblationCredit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "ablation-credit")
		tab := rep.Tables[0]
		exch := lastY(b, tab, "exchange (2-5-way)")
		kazaa := lastY(b, tab, "kazaa level (cheated)")
		b.ReportMetric(exch-kazaa, "exchange-vs-kazaa")
	}
}

func BenchmarkAblationSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runExperiment(b, "ablation-search")
		b.ReportMetric(lastY(b, rep.Tables[0], "exchange fraction"), "frac@maxbudget")
	}
}

// BenchmarkRunnerSequentialVsParallel runs the same 8-point quick grid at
// several worker-pool widths. The runner's contract makes the outputs
// byte-identical, so the sub-benchmark wall times isolate the fan-out
// speedup (expect roughly linear scaling up to the core count).
func BenchmarkRunnerSequentialVsParallel(b *testing.B) {
	makeJobs := func() []runner.Job {
		var jobs []runner.Job
		for _, ul := range []float64{80, 60, 40, 20} {
			for _, pol := range []core.Policy{core.Policy2N, core.PolicyNoExchange} {
				cfg := experiment.QuickBase()
				cfg.Seed = 1
				cfg.UploadKbps = ul
				cfg.Policy = pol
				jobs = append(jobs, runner.Job{Config: cfg})
			}
		}
		return jobs
	}
	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			jobs := makeJobs()
			for i := 0; i < b.N; i++ {
				results, err := runner.Run(jobs, runner.Options{Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(jobs) || results[0].Primary() == nil {
					b.Fatal("incomplete grid results")
				}
			}
		})
	}
}

// BenchmarkSimulationEventRate measures raw engine throughput at paper
// scale: events executed per second of wall time, per shard count.
// shards=1 is the single-threaded engine; shards=4 runs four event-loop
// domains on the worker pool, so the ratio of the two events/s metrics is
// the parallel speedup BENCH_2.json tracks.
func BenchmarkSimulationEventRate(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := experiment.FullBase()
			cfg.Duration = 50_000
			cfg.Shards = shards
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				s, err := sim.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkChurnEventRate measures engine throughput under continuous
// disconnect/rejoin churn: bulk removal and re-insertion of whole peer
// stores is the worst-case path of the incremental holders/wanters indexes.
func BenchmarkChurnEventRate(b *testing.B) {
	cfg := experiment.FullBase()
	cfg.Duration = 20_000
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for t := 1_000.0; t < cfg.Duration-1_000; t += 1_000 {
			s.RunUntil(t)
			id := core.PeerID(int(t/1_000) % s.NumPeers())
			s.DisconnectPeer(id)
			s.RunUntil(t + 500)
			s.RejoinPeer(id)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRingSearchPolicies compares the per-search cost of the two
// search orders on a loaded live graph snapshot.
func BenchmarkRingSearchPolicies(b *testing.B) {
	cfg := experiment.QuickBase()
	cfg.UploadKbps = 20
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.RunUntil(10_000)
	for _, pol := range []core.Policy{core.PolicyPairwise, core.Policy2N, core.PolicyN2} {
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.SearchOnce(core.PeerID(i%cfg.NumPeers), pol)
			}
		})
	}
}

// verifyBenchLatency is the simulated one-way network latency under the
// mediator verify benchmark: audits are RPC round trips, so the benchmark
// runs them over a latency-bearing link where serialized and pipelined
// clients genuinely differ, as they do on a real network.
const verifyBenchLatency = 250 * time.Microsecond

// newVerifyBench builds a deposit-primed mediator tier and returns a
// shard-aware client plus one sealed audit sample per object (1-indexed).
func newVerifyBench(b *testing.B, shards, objects int) (*MedClient, []protocol.Block) {
	b.Helper()
	tr := NewMemLatencyTransport(verifyBenchLatency)
	content := make([][]byte, objects+1)
	digests := make([][32]byte, objects+1)
	for o := 1; o <= objects; o++ {
		content[o] = []byte(fmt.Sprintf("bench-object-%d-payload", o))
		digests[o] = sha256.Sum256(content[o])
	}
	oracle := func(o ObjectID) ([][32]byte, bool) {
		if o < 1 || int(o) > objects {
			return nil, false
		}
		return [][32]byte{digests[o]}, true
	}
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("mem://bench-med-%d", i)
	}
	cluster, err := NewMediatorCluster(tr, addrs, oracle)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	client, err := NewMedClient(MedClientConfig{Transport: tr, Seeds: cluster.Addrs()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(client.Close)

	const sender, receiver = PeerID(1), PeerID(2)
	samples := make([]protocol.Block, objects+1)
	for o := 1; o <= objects; o++ {
		obj := ObjectID(o)
		var key [16]byte
		key[0] = byte(o)
		if err := client.Deposit(uint64(o), sender, obj, key); err != nil {
			b.Fatal(err)
		}
		sealed, err := mediator.Seal(key, sender, receiver, obj, 0, content[o])
		if err != nil {
			b.Fatal(err)
		}
		samples[o] = protocol.Block{Object: obj, Index: 0, Origin: sender, Recipient: receiver, Encrypted: true, Payload: sealed}
	}
	return client, samples
}

// BenchmarkMediatorVerify measures the live mediator tier's audit
// round-trip — deposit-backed verifies through the shard-aware client over
// the in-memory transport — for a single shard, a 4-shard cluster, and the
// same 4-shard cluster driven by 8 concurrent callers so the enveloped wire
// protocol keeps 8 RPCs in flight per demultiplexed connection.
// BENCH_2.json tracks both the serialized and pipelined numbers.
func BenchmarkMediatorVerify(b *testing.B) {
	const objects = 64
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			client, samples := newVerifyBench(b, shards, objects)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := i%objects + 1
				if _, err := client.Verify(uint64(o), PeerID(2), PeerID(1), ObjectID(o), samples[o:o+1]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "verifies/s")
		})
	}
	b.Run("pipelined=8", func(b *testing.B) {
		const workers = 8
		client, samples := newVerifyBench(b, 4, objects)
		b.ResetTimer()
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := atomic.AddInt64(&next, 1) - 1
					if i >= int64(b.N) {
						return
					}
					o := int(i%int64(objects)) + 1
					if _, err := client.Verify(uint64(o), PeerID(2), PeerID(1), ObjectID(o), samples[o:o+1]); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "verifies/s")
	})
}

// BenchmarkStripedDownload measures a whole mediated download on the live
// stack — sealed blocks, per-origin escrow, stripe audits, decrypt — from
// three bandwidth-limited origins, single-sender versus striped across all
// three. Each iteration is one fresh receiver completing one object, so
// downloads/s compares end-to-end transfer time directly.
func BenchmarkStripedDownload(b *testing.B) {
	const (
		blockSize = 1024
		objSize   = 64 * blockSize
		origins   = 3
	)
	for _, stripe := range []int{1, 3} {
		b.Run(fmt.Sprintf("stripe=%d", stripe), func(b *testing.B) {
			tr := NewMemTransport()
			obj := ObjectID(1)
			data := make([]byte, objSize)
			for i := range data {
				data[i] = byte(i * 31)
			}
			var digs [][32]byte
			for off := 0; off < len(data); off += blockSize {
				digs = append(digs, sha256.Sum256(data[off:off+blockSize]))
			}
			oracle := func(o ObjectID) ([][32]byte, bool) {
				if o != obj {
					return nil, false
				}
				return digs, true
			}
			cluster, err := NewMediatorCluster(tr, []string{"mem://sd-med-0", "mem://sd-med-1"}, oracle)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(cluster.Close)
			newClient := func() *MedClient {
				c, err := NewMedClient(MedClientConfig{Transport: tr, Seeds: cluster.Addrs()})
				if err != nil {
					b.Fatal(err)
				}
				return c
			}
			providers := make(map[PeerID]string)
			for id := PeerID(1); id <= origins; id++ {
				mc := newClient()
				b.Cleanup(mc.Close)
				n, err := NewNode(NodeConfig{
					ID:         id,
					Addr:       fmt.Sprintf("mem://sd-origin-%d", id),
					Transport:  tr,
					Mediator:   mc,
					Share:      true,
					BlockSize:  blockSize,
					BlockDelay: 200 * time.Microsecond, // a finite per-origin uplink
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(n.Close)
				n.AddObject(obj, data)
				providers[id] = n.Addr()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mc := newClient()
				r, err := NewNode(NodeConfig{
					ID:        PeerID(100 + i),
					Addr:      fmt.Sprintf("mem://sd-recv-%d", i),
					Transport: tr,
					Mediator:  mc,
					Stripe:    stripe,
					BlockSize: blockSize,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := WaitDownload(r.Download(obj, providers), time.Minute); err != nil {
					b.Fatal(err)
				}
				r.Close()
				mc.Close()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "downloads/s")
		})
	}
}

// BenchmarkWorkloadSchedule measures the temporal workload layer's
// scheduling throughput: compiling a builtin spec and walking every peer's
// arrival process across the full horizon, exactly as the simulator's
// open-loop setup and the swarm's wave builder do. Reported as sampled
// arrivals per second of wall time.
func BenchmarkWorkloadSchedule(b *testing.B) {
	spec, ok := workload.Builtin("flash")
	if !ok {
		b.Fatal("flash builtin missing")
	}
	const peers, objects = 200, 100
	b.ReportAllocs()
	var arrivals uint64
	for i := 0; i < b.N; i++ {
		sched, err := spec.Compile(3600, peers, objects, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < peers; p++ {
			arrive, depart := sched.Session(p)
			st := sched.PeerStream(p)
			for t := sched.NextArrival(arrive, st); t < depart; t = sched.NextArrival(t, st) {
				if obj := sched.SampleObject(t, st); obj < 0 || obj >= objects {
					b.Fatalf("object %d out of range", obj)
				}
				arrivals++
			}
		}
	}
	if arrivals == 0 {
		b.Fatal("schedule produced no arrivals")
	}
	b.ReportMetric(float64(arrivals)/b.Elapsed().Seconds(), "arrivals/s")
}
