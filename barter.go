package barter

import (
	"io"

	"barter/internal/core"
	"barter/internal/experiment"
	"barter/internal/runner"
	"barter/internal/sim"
	"barter/internal/strategy"
	"barter/internal/workload"
)

// The simulation API re-exports the internal engine types: the facade is the
// supported surface, the internal packages are free to evolve.
type (
	// Config holds every parameter of a simulation run; see DefaultConfig
	// for the paper's Table II values.
	Config = sim.Config
	// Result aggregates the metrics of one run.
	Result = sim.Result
	// Simulation is one deterministic discrete-event run.
	Simulation = sim.Sim
	// Policy selects the exchange mechanism under test.
	Policy = core.Policy
	// Ring is a feasible n-way exchange.
	Ring = core.Ring
	// Experiment is one reproducible paper artifact (table or figure).
	Experiment = experiment.Experiment
	// ExperimentOptions tunes one experiment invocation.
	ExperimentOptions = experiment.Options
	// ExperimentReport is an experiment's output tables.
	ExperimentReport = experiment.Report
	// SimJob is one grid point for the parallel runner: a configuration
	// plus an optional label and per-replica finalizer.
	SimJob = runner.Job
	// RunnerOptions bounds the worker pool and sets the replication factor
	// of a grid run.
	RunnerOptions = runner.Options
	// RunnerResult holds one job's per-replica simulation results.
	RunnerResult = runner.Result

	// Tree is a request tree: a peer's partial view of the request graph.
	Tree = core.Tree
	// IRQEntry feeds BuildTree with one incoming-request-queue entry.
	IRQEntry = core.IRQEntry
	// Want pairs a wanted object with its known providers for ring search.
	Want = core.Want
	// RingMember is one position in an exchange ring.
	RingMember = core.Member
	// SearchStats reports the cost of one ring search.
	SearchStats = core.SearchStats

	// Strategy declares one peer-behavior class — contribution policy,
	// adaptive/whitewash/partial behavior, class label — shared by the
	// simulator (Config.Mix) and the live swarm's scenarios.
	Strategy = strategy.Strategy
	// StrategyClass is one weighted entry of a population mix.
	StrategyClass = strategy.Class
	// StrategyMix is an ordered population mix of weighted classes.
	StrategyMix = strategy.Mix

	// WorkloadSpec is one declarative temporal workload — demand phases,
	// popularity model, session cohorts — consumed identically by the
	// simulator (Config.Workload) and the live swarm's wave scenario
	// (SwarmConfig.Workload). See internal/workload and docs/WORKLOADS.md.
	WorkloadSpec = workload.Spec
	// WorkloadTrace is a recorded run in the versioned JSON-lines trace
	// format, replayable deterministically via Config.Trace.
	WorkloadTrace = workload.Trace
	// WorkloadRecorder accumulates trace events from a live run.
	WorkloadRecorder = workload.Recorder
)

// The canonical peer strategies, usable in Config.Mix and mirrored by the
// live swarm's adversary scenario.
var (
	// StrategySharing is the paper's contributing peer.
	StrategySharing = strategy.Sharing
	// StrategyNonSharing is the paper's static free-rider.
	StrategyNonSharing = strategy.NonSharing
	// StrategyAdaptiveFreerider contributes only while refused.
	StrategyAdaptiveFreerider = strategy.AdaptiveFreerider
	// StrategyWhitewasher periodically rejoins under a fresh identity.
	StrategyWhitewasher = strategy.Whitewasher
	// StrategyPartialSharer contributes through throttled upload slots.
	StrategyPartialSharer = strategy.PartialSharer
)

// LegacyStrategyMix returns the paper's two-class population mix: frac
// static free-riders, the rest sharers — exactly what Config.FreeriderFrac
// expands to when Config.Mix is nil.
func LegacyStrategyMix(freeriderFrac float64) StrategyMix {
	return strategy.LegacyMix(freeriderFrac)
}

// BuildTree assembles a request tree from an incoming request queue, pruned
// to maxDepth (the paper prunes to depth 5).
func BuildTree(root PeerID, irq []IRQEntry, maxDepth int) *Tree {
	return core.BuildTree(root, irq, maxDepth)
}

// FindRing searches a request tree for the best feasible exchange ring
// under the policy; see core.FindRing for the full contract.
func FindRing(t *Tree, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	return core.FindRing(t, wants, pol)
}

// MaxRingDefault is the paper's ring-size cap (5).
const MaxRingDefault = core.DefaultMaxRing

// Exchange policies evaluated by the paper.
var (
	// PolicyNoExchange is the baseline: no exchange priority at all.
	PolicyNoExchange = core.PolicyNoExchange
	// PolicyPairwise detects only 2-way exchanges.
	PolicyPairwise = core.PolicyPairwise
	// Policy2N searches short rings first, up to 5-way ("2-5-way").
	Policy2N = core.Policy2N
	// PolicyN2 searches long rings first, down to pairwise ("5-2-way").
	PolicyN2 = core.PolicyN2
)

// DefaultConfig returns the paper's Table II parameters.
func DefaultConfig() Config { return sim.DefaultConfig() }

// PaperConfig returns the configuration the experiment harness uses at full
// scale: Table II plus the documented availability calibration (see
// DESIGN.md).
func PaperConfig() Config { return experiment.FullBase() }

// QuickConfig returns the scaled-down world used by tests, benchmarks and
// the quickstart example: 30 peers, 0.5 MB objects, seconds of wall time.
func QuickConfig() Config { return experiment.QuickBase() }

// NewSimulation constructs a deterministic simulation run.
func NewSimulation(cfg Config) (*Simulation, error) { return sim.New(cfg) }

// RunGrid executes a grid of independent simulation jobs over a bounded
// worker pool and returns one result per job in submission order. Every
// job's effective seed depends only on (its seed, job index, replica index),
// never on worker count, so results are deterministic at any parallelism;
// see internal/runner for the full contract.
//
// Per-run mutable state (notably a stateful Config.Ranker) must be built in
// the job's Finalize hook, not set on Config directly — Config is copied by
// value per replica, and a shared Ranker instance races across concurrent
// replicas and voids the determinism contract.
func RunGrid(jobs []SimJob, opts RunnerOptions) ([]RunnerResult, error) {
	return runner.Run(jobs, opts)
}

// Experiments returns every paper artifact in paper order: table2, fig4
// through fig12, and the ablations.
func Experiments() []*Experiment { return experiment.All() }

// ExperimentByID returns one artifact by key (e.g. "fig4").
func ExperimentByID(id string) (*Experiment, bool) { return experiment.ByID(id) }

// LoadWorkload resolves a workload argument the way the CLIs document it:
// a path to a JSON spec file if one exists there, otherwise a builtin name
// (see WorkloadBuiltins).
func LoadWorkload(nameOrPath string) (*WorkloadSpec, error) { return workload.Load(nameOrPath) }

// WorkloadBuiltins lists the named builtin workload specs.
func WorkloadBuiltins() []string { return workload.BuiltinNames() }

// RunWorkload executes one open-loop workload spec in the simulator through
// the parallel grid runner (exchsim -workload).
func RunWorkload(spec *WorkloadSpec, opts ExperimentOptions) (*ExperimentReport, error) {
	return experiment.WorkloadRun(spec, opts)
}

// ReadWorkloadTrace decodes and validates a JSON-lines trace.
func ReadWorkloadTrace(r io.Reader) (*WorkloadTrace, error) { return workload.ReadTrace(r) }

// ReplayTrace re-runs a recorded trace in the simulator (exchsim -trace);
// the emitted TSV is byte-identical at any ExperimentOptions.Parallel.
func ReplayTrace(tr *WorkloadTrace, opts ExperimentOptions) (*ExperimentReport, error) {
	return experiment.ReplayTrace(tr, opts)
}
