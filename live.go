package barter

import (
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/mediator"
	"barter/internal/node"
	"barter/internal/transport"
)

// Live-network API: the concurrent peer implementation of the exchange
// protocol, the transports it runs over, and the trusted mediator.
type (
	// PeerID identifies a peer in both the simulator and the live network.
	PeerID = core.PeerID
	// ObjectID identifies an object (file) in the catalog.
	ObjectID = catalog.ObjectID
	// Node is a live peer; construct with NewNode.
	Node = node.Node
	// NodeConfig configures a live peer.
	NodeConfig = node.Config
	// NodeStats snapshots a live peer's counters.
	NodeStats = node.Stats
	// Transport is the pluggable byte transport under the live protocol.
	Transport = transport.Transport
	// Mediator is the trusted audit-and-escrow service of Section III-B.
	Mediator = mediator.Mediator
	// DigestOracle supplies trusted block checksums to a mediator.
	DigestOracle = mediator.DigestOracle
)

// NewNode starts a live peer.
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// WaitDownload blocks on a Node.Download channel with a timeout.
func WaitDownload(ch <-chan error, timeout time.Duration) error {
	return node.WaitFor(ch, timeout)
}

// NewMemTransport returns an in-process transport for tests, examples, and
// single-machine demos.
func NewMemTransport() Transport { return transport.NewMem() }

// NewTCPTransport returns the production TCP transport.
func NewTCPTransport() Transport { return transport.TCP{} }

// NewMediator starts a trusted mediator on the given transport address.
func NewMediator(tr Transport, addr string, oracle DigestOracle) (*Mediator, error) {
	return mediator.New(tr, addr, oracle)
}
