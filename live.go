package barter

import (
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/node"
	"barter/internal/swarm"
	"barter/internal/transport"
)

// Live-network API: the concurrent peer implementation of the exchange
// protocol, the transports it runs over, and the trusted mediator.
type (
	// PeerID identifies a peer in both the simulator and the live network.
	PeerID = core.PeerID
	// ObjectID identifies an object (file) in the catalog.
	ObjectID = catalog.ObjectID
	// Node is a live peer; construct with NewNode.
	Node = node.Node
	// NodeConfig configures a live peer.
	NodeConfig = node.Config
	// NodeStats snapshots a live peer's counters.
	NodeStats = node.Stats
	// Transport is the pluggable byte transport under the live protocol.
	Transport = transport.Transport
	// Mediator is the trusted audit-and-escrow service of Section III-B —
	// standalone, or one shard of a MediatorCluster.
	Mediator = mediator.Mediator
	// MediatorShardOpts position a mediator inside a sharded tier.
	MediatorShardOpts = mediator.ShardOpts
	// MediatorCluster is a horizontally sharded mediator tier: N shards
	// partitioned by consistent hashing over object id, with kill/restart
	// support for failover scenarios.
	MediatorCluster = mediator.Cluster
	// DigestOracle supplies trusted block checksums to a mediator.
	DigestOracle = mediator.DigestOracle
	// MedClient is the shard-aware mediator client: shard-map caching,
	// pooled connections, retry with backoff, replica failover.
	MedClient = medclient.Client
	// MedClientConfig parameterizes a MedClient.
	MedClientConfig = medclient.Config
	// SwarmConfig parameterizes a live-network swarm run; see RunSwarm.
	SwarmConfig = swarm.Config
	// SwarmScenario names a declarative swarm workload.
	SwarmScenario = swarm.Scenario
	// SwarmResult aggregates one swarm run into figure-shaped TSV.
	SwarmResult = swarm.Result
	// SwarmPeerResult is one node's outcome within a swarm run.
	SwarmPeerResult = swarm.PeerResult
)

// The built-in swarm scenarios.
const (
	SwarmFlashCrowd = swarm.FlashCrowd
	SwarmMixed      = swarm.Mixed
	SwarmFreerider  = swarm.Freerider
	SwarmCheater    = swarm.Cheater
	SwarmChurn      = swarm.Churn
	SwarmAdversary  = swarm.Adversary
	SwarmMedfail    = swarm.Medfail
	SwarmReshard    = swarm.Reshard
	SwarmWave       = swarm.Wave
)

// MedClient verdict errors: a rejection proves the claimed sender cheated;
// a missing key is transient (escrow not yet arrived, or lost to a shard
// restart); unavailable means the tier was unreachable through every retry
// and failover attempt.
var (
	ErrMediatorRejected    = medclient.ErrRejected
	ErrMediatorNoKey       = medclient.ErrNoKey
	ErrMediatorUnavailable = medclient.ErrUnavailable
)

// RunSwarm launches a live-network swarm — hundreds of real peers plus a
// trusted mediator over the in-memory transport or TCP loopback — drives
// the configured scenario, and aggregates per-node stats into the same
// figure-shaped TSV the simulator emits (see internal/swarm).
func RunSwarm(cfg SwarmConfig) (*SwarmResult, error) { return swarm.Run(cfg) }

// SwarmScenarios lists the built-in swarm scenarios.
func SwarmScenarios() []SwarmScenario { return swarm.Scenarios() }

// NewNode starts a live peer.
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// WaitDownload blocks on a Node.Download channel with a timeout.
func WaitDownload(ch <-chan error, timeout time.Duration) error {
	return node.WaitFor(ch, timeout)
}

// NewMemTransport returns an in-process transport for tests, examples, and
// single-machine demos.
func NewMemTransport() Transport { return transport.NewMem() }

// NewMemLatencyTransport returns an in-process transport that delays every
// message by the given one-way latency, timestamped at send so in-flight
// messages overlap. It makes round-trip-bound behavior — RPC pipelining,
// stall recovery — measurable without a real network.
func NewMemLatencyTransport(oneWay time.Duration) Transport {
	return transport.NewMemLatency(oneWay)
}

// NewTCPTransport returns the production TCP transport.
func NewTCPTransport() Transport { return transport.TCP{} }

// NewTCPTransportDeadlines returns a TCP transport that arms the given
// read and write deadlines around every Recv and Send on its connections
// (zero disables either side, matching NewTCPTransport), so a hung peer
// surfaces as an error instead of wedging a goroutine forever.
func NewTCPTransportDeadlines(read, write time.Duration) Transport {
	return transport.TCP{ReadTimeout: read, WriteTimeout: write}
}

// NewMediator starts a standalone trusted mediator on the given transport
// address.
func NewMediator(tr Transport, addr string, oracle DigestOracle) (*Mediator, error) {
	return mediator.New(tr, addr, oracle)
}

// NewMediatorShard starts a mediator as one member of a sharded tier; the
// opts carry its ring position and the topology map it advertises.
func NewMediatorShard(tr Transport, addr string, oracle DigestOracle, opts MediatorShardOpts) (*Mediator, error) {
	return mediator.NewShard(tr, addr, oracle, opts)
}

// NewMediatorCluster starts one mediator shard per listen address, all
// sharing the oracle, partitioned by consistent hashing over object id.
func NewMediatorCluster(tr Transport, addrs []string, oracle DigestOracle) (*MediatorCluster, error) {
	return mediator.NewCluster(tr, addrs, oracle)
}

// NewMedClient builds the shard-aware mediator client every live peer
// should route its escrow and audit traffic through.
func NewMedClient(cfg MedClientConfig) (*MedClient, error) {
	return medclient.New(cfg)
}
