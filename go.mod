module barter

go 1.24
